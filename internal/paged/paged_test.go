package paged

import (
	"testing"
	"testing/quick"
)

func TestAllocWithinPage(t *testing.T) {
	a := NewArena(4096)
	r1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Page != 0 || r2.Page != 0 {
		t.Fatalf("small allocs spilled pages: %+v %+v", r1, r2)
	}
	if r2.Off != 100 {
		t.Fatalf("bump offset = %d", r2.Off)
	}
	if a.AllocatedBytes() != 200 {
		t.Fatalf("allocated = %d", a.AllocatedBytes())
	}
}

func TestAllocBumpsToNextPage(t *testing.T) {
	a := NewArena(4096)
	a.Alloc(4000)
	r, err := a.Alloc(200) // does not fit in the 96 bytes left
	if err != nil {
		t.Fatal(err)
	}
	if r.Page != 1 || r.Off != 0 {
		t.Fatalf("alloc did not bump to next page: %+v", r)
	}
}

func TestAllocLargeObjectSpansPages(t *testing.T) {
	a := NewArena(4096)
	a.Alloc(10)
	r, err := a.Alloc(10000) // needs 3 pages
	if err != nil {
		t.Fatal(err)
	}
	if r.Page != 1 || r.Off != 0 {
		t.Fatalf("large alloc not page aligned: %+v", r)
	}
	if a.Pages() < 4 {
		t.Fatalf("pages = %d, want >= 4", a.Pages())
	}
}

func TestAllocErrors(t *testing.T) {
	a := NewArena(4096)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestTouchCounts(t *testing.T) {
	a := NewArena(4096)
	r, _ := a.Alloc(64)
	for i := 0; i < 5; i++ {
		a.Touch(r)
	}
	prof := a.Profile()
	if prof[0] != 5 {
		t.Fatalf("profile[0] = %v", prof[0])
	}
	if a.TotalTouches() != 5 {
		t.Fatalf("total = %d", a.TotalTouches())
	}
}

func TestTouchRangeSpansPages(t *testing.T) {
	a := NewArena(4096)
	r, _ := a.Alloc(10000)
	a.TouchRange(r, 10000)
	prof := a.Profile()
	touched := 0
	for _, c := range prof {
		if c > 0 {
			touched++
		}
	}
	if touched != 3 {
		t.Fatalf("touched %d pages, want 3", touched)
	}
}

// TestTouchRangeZeroBytes: a zero-byte range access must count exactly
// like Touch — one access to the first page — instead of vanishing.
func TestTouchRangeZeroBytes(t *testing.T) {
	a := NewArena(4096)
	r, _ := a.Alloc(64)
	a.TouchRange(r, 0)
	a.TouchRangeAt(r, 0, 0)
	a.TouchRangeAt(r, 0, -5) // negative length counts like zero
	if got := a.Profile()[0]; got != 3 {
		t.Fatalf("zero-byte touches on page 0 = %v, want 3", got)
	}
	if a.TotalTouches() != 3 {
		t.Fatalf("total = %d, want 3", a.TotalTouches())
	}
}

// TestTouchRangeClampsToAllocation: a length past r.Size must not charge
// pages belonging to neighboring allocations.
func TestTouchRangeClampsToAllocation(t *testing.T) {
	a := NewArena(4096)
	r, _ := a.Alloc(4096) // page 0, exactly
	a.Alloc(4096)         // page 1: the neighbor that must stay untouched
	a.TouchRange(r, 1<<20)
	prof := a.Profile()
	if prof[0] != 1 {
		t.Fatalf("profile[0] = %v, want 1", prof[0])
	}
	if prof[1] != 0 {
		t.Fatalf("overlong range leaked onto neighbor page: profile[1] = %v", prof[1])
	}
}

// TestTouchRangeAtClamps: offset and offset+length past the allocation
// clamp to its last byte instead of charging pages beyond it.
func TestTouchRangeAtClamps(t *testing.T) {
	a := NewArena(4096)
	r, _ := a.Alloc(10000) // pages 0..2 (last byte on page 2)
	a.Alloc(4096)          // page 3: neighbor

	a.TouchRangeAt(r, 9000, 5000) // tail clamped to byte 9999
	prof := a.Profile()
	if prof[2] != 1 || prof[3] != 0 {
		t.Fatalf("tail clamp: profile[2..3] = %v %v, want 1 0", prof[2], prof[3])
	}

	a.ResetCounts()
	a.TouchRangeAt(r, 1<<20, 64) // offset past the end: last byte's page
	prof = a.Profile()
	if prof[2] != 1 || prof[3] != 0 {
		t.Fatalf("offset clamp: profile[2..3] = %v %v, want 1 0", prof[2], prof[3])
	}

	a.ResetCounts()
	a.TouchRangeAt(r, -100, 10) // negative offset: start of allocation
	prof = a.Profile()
	if prof[0] != 1 {
		t.Fatalf("negative offset: profile[0] = %v, want 1", prof[0])
	}
}

// TestTouchRangeAtSpansPages: an in-bounds slice still charges exactly
// the pages it covers.
func TestTouchRangeAtSpansPages(t *testing.T) {
	a := NewArena(4096)
	r, _ := a.Alloc(10000)
	a.TouchRangeAt(r, 4000, 200) // bytes 4000..4199: pages 0 and 1
	prof := a.Profile()
	if prof[0] != 1 || prof[1] != 1 || prof[2] != 0 {
		t.Fatalf("profile[0..2] = %v %v %v, want 1 1 0", prof[0], prof[1], prof[2])
	}
}

func TestResetCounts(t *testing.T) {
	a := NewArena(4096)
	r, _ := a.Alloc(64)
	a.Touch(r)
	a.ResetCounts()
	if a.TotalTouches() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTouchInvalidRefIgnored(t *testing.T) {
	a := NewArena(4096)
	a.Touch(Ref{})          // zero ref
	a.TouchRange(Ref{}, 10) // zero ref
	if a.TotalTouches() != 0 {
		t.Fatal("invalid touches counted")
	}
}

// Property: allocations never overlap and never exceed page bounds for
// sub-page sizes.
func TestAllocProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewArena(4096)
		type span struct{ page, off, size int64 }
		var spans []span
		for _, s16 := range sizes {
			size := int64(s16%4000) + 1
			r, err := a.Alloc(size)
			if err != nil {
				return false
			}
			if int64(r.Off)+size > 4096 {
				return false // straddles page boundary
			}
			for _, sp := range spans {
				if sp.page == int64(r.Page) {
					aStart, aEnd := int64(r.Off), int64(r.Off)+size
					bStart, bEnd := sp.off, sp.off+sp.size
					if aStart < bEnd && bStart < aEnd {
						return false // overlap
					}
				}
			}
			spans = append(spans, span{int64(r.Page), int64(r.Off), size})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
