// Package paged provides a paged arena allocator used to instrument
// the real applications (internal/apps/...): objects are laid out on
// simulated pages, every object access bumps its page's counter, and
// the resulting per-page access histogram becomes the page-granularity
// workload profile the memory simulator consumes.
//
// This is the bridge between really-executed application logic (a
// PageRank iteration, an OCC transaction, a cache GET) and the tiered
// memory simulation: the tiering systems under test see exactly what
// they would see on hardware — a page-level access distribution.
package paged

import (
	"fmt"
	"sync/atomic"
)

// Ref locates an allocation in the arena.
type Ref struct {
	// Page is the index of the first page of the allocation.
	Page int32
	// Off is the byte offset within that page.
	Off int32
	// Size is the allocation size in bytes.
	Size int32
}

// Valid reports whether the ref points at an allocation.
func (r Ref) Valid() bool { return r.Size > 0 }

// Arena is a bump allocator over fixed-size pages with per-page access
// accounting. Touch* methods are safe for concurrent use (atomic
// counters); Alloc is not and must be serialized by the caller.
type Arena struct {
	pageBytes int32
	counts    []int64
	nextPage  int32
	nextOff   int32
	allocated int64
}

// NewArena returns an arena with the given page size (e.g. 2 MiB to
// match the simulator's placement granularity, or smaller in tests).
func NewArena(pageBytes int64) *Arena {
	if pageBytes <= 0 || pageBytes > 1<<30 {
		panic("paged: page size out of range")
	}
	return &Arena{pageBytes: int32(pageBytes)}
}

// PageBytes returns the arena page size.
func (a *Arena) PageBytes() int64 { return int64(a.pageBytes) }

// Pages returns the number of pages the arena spans so far.
func (a *Arena) Pages() int { return int(a.nextPage) + boolToInt(a.nextOff > 0) }

// AllocatedBytes returns the total bytes handed out.
func (a *Arena) AllocatedBytes() int64 { return a.allocated }

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Alloc reserves size bytes and returns its ref. Allocations larger
// than a page span consecutive pages; allocations never straddle a
// page boundary unless they exceed the remaining space, in which case
// the allocator bumps to the next page (like a slab allocator keeping
// objects page-local for TLB friendliness).
func (a *Arena) Alloc(size int64) (Ref, error) {
	if size <= 0 {
		return Ref{}, fmt.Errorf("paged: alloc of %d bytes", size)
	}
	if size > int64(a.pageBytes) {
		// Large object: spans whole pages, starts page-aligned.
		if a.nextOff > 0 {
			a.nextPage++
			a.nextOff = 0
		}
		pagesNeeded := int32((size + int64(a.pageBytes) - 1) / int64(a.pageBytes))
		r := Ref{Page: a.nextPage, Off: 0, Size: int32min(size)}
		a.nextPage += pagesNeeded
		a.allocated += size
		a.ensure(int(a.nextPage))
		return r, nil
	}
	if int64(a.nextOff)+size > int64(a.pageBytes) {
		a.nextPage++
		a.nextOff = 0
	}
	r := Ref{Page: a.nextPage, Off: a.nextOff, Size: int32(size)}
	a.nextOff += int32(size)
	a.allocated += size
	a.ensure(int(a.nextPage) + 1)
	return r, nil
}

// int32min clamps a size into the Ref field (refs only need sizes for
// touch-spanning; multi-GB single objects are not used by the apps).
func int32min(v int64) int32 {
	const max = 1<<31 - 1
	if v > max {
		return max
	}
	return int32(v)
}

func (a *Arena) ensure(pages int) {
	for len(a.counts) < pages {
		a.counts = append(a.counts, 0)
	}
}

// Touch records one access to the allocation (its first page).
func (a *Arena) Touch(r Ref) {
	if !r.Valid() || int(r.Page) >= len(a.counts) {
		return
	}
	atomic.AddInt64(&a.counts[r.Page], 1)
}

// TouchRange records an access covering bytes of the allocation,
// charging every page the range spans. The range is clamped to the
// allocation's size, and a zero-byte access still charges the first
// page, matching Touch: on hardware, resolving the address faults the
// page regardless of how many bytes the instruction then reads.
func (a *Arena) TouchRange(r Ref, bytes int64) {
	a.TouchRangeAt(r, 0, bytes)
}

// TouchRangeAt records an access to bytes starting offsetBytes into
// the allocation (for instrumenting slices of large arrays, e.g. one
// vertex's edge list within a CSR edge array). The offset and length
// are clamped to the allocation, and a zero-byte access charges the
// page the offset resolves to.
func (a *Arena) TouchRangeAt(r Ref, offsetBytes, bytes int64) {
	if !r.Valid() {
		return
	}
	size := int64(r.Size)
	if offsetBytes < 0 {
		offsetBytes = 0
	} else if offsetBytes > size-1 {
		offsetBytes = size - 1
	}
	if bytes < 0 {
		bytes = 0
	}
	if offsetBytes+bytes > size {
		bytes = size - offsetBytes
	}
	pb := int64(a.pageBytes)
	start := int64(r.Page)*pb + int64(r.Off) + offsetBytes
	last := start // zero-byte access: the page holding the address
	if bytes > 0 {
		last = start + bytes - 1
	}
	for p := start / pb; p <= last/pb; p++ {
		if int(p) < len(a.counts) {
			atomic.AddInt64(&a.counts[p], 1)
		}
	}
}

// Profile returns a copy of the per-page access histogram.
func (a *Arena) Profile() []float64 {
	out := make([]float64, len(a.counts))
	for i := range a.counts {
		out[i] = float64(atomic.LoadInt64(&a.counts[i]))
	}
	return out
}

// TotalTouches returns the total recorded accesses.
func (a *Arena) TotalTouches() int64 {
	var sum int64
	for i := range a.counts {
		sum += atomic.LoadInt64(&a.counts[i])
	}
	return sum
}

// ResetCounts zeroes the histogram (e.g. after a warm-up phase, so the
// profile reflects steady-state access patterns only).
func (a *Arena) ResetCounts() {
	for i := range a.counts {
		atomic.StoreInt64(&a.counts[i], 0)
	}
}
