package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDirtyTree materializes a module tree with one determinism
// violation (a time.Now in internal/) and returns its root and the
// violating file's path.
func writeDirtyTree(t *testing.T) (root, badFile string) {
	t.Helper()
	root = t.TempDir()
	dir := filepath.Join(root, "internal", "p")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package p\n\nimport \"time\"\n\n// Now reads the clock.\nfunc Now() float64 { return float64(time.Now().UnixNano()) }\n"
	badFile = filepath.Join(dir, "p.go")
	if err := os.WriteFile(badFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root, badFile
}

func TestListChecks(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d (stderr %q)", code, errOut.String())
	}
	for _, name := range []string{"determinism", "maprange", "msgprefix", "seedflow"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownCheckRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown -checks exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown check "nope"`) {
		t.Errorf("stderr %q does not name the unknown check", errOut.String())
	}
}

// TestExitStatus drives the binary's contract: nonzero with findings
// (a known-bad fixture placed in-tree), zero on a clean tree.
func TestExitStatus(t *testing.T) {
	dirty := t.TempDir()
	bad, err := os.ReadFile(filepath.Join("..", "..", "internal", "lint", "testdata", "src", "internal", "simbad", "bad_determinism.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dirty, "internal", "simbad"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirty, "internal", "simbad", "bad.go"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{dirty + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("dirty tree exited %d, want 1 (stdout %q, stderr %q)", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[determinism]") {
		t.Errorf("findings missing determinism hit:\n%s", out.String())
	}

	clean := t.TempDir()
	if err := os.MkdirAll(filepath.Join(clean, "internal", "ok"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package ok\n\n// V is fixture data.\nvar V = 1\n"
	if err := os.WriteFile(filepath.Join(clean, "internal", "ok", "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{clean + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("clean tree exited %d (stdout %q, stderr %q)", code, out.String(), errOut.String())
	}
}

// TestJSONOutput drives -json: findings arrive as a JSON array whose
// objects carry the content-addressed id alongside file/line/check/msg.
func TestJSONOutput(t *testing.T) {
	root, _ := writeDirtyTree(t)
	var out, errOut strings.Builder
	if code := run([]string{"-json", root + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("dirty -json run exited %d, want 1 (stderr %q)", code, errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %+v", findings)
	}
	f := findings[0]
	if f.Check != "determinism" || f.Line == 0 || !strings.Contains(f.File, "p.go") {
		t.Errorf("finding fields wrong: %+v", f)
	}
	if len(f.ID) != 16 {
		t.Errorf("id %q is not a 16-hex content address", f.ID)
	}
}

// TestUpdateBaselineRequiresPath pins the flag contract: -update-baseline
// without -baseline is a usage error.
func TestUpdateBaselineRequiresPath(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-update-baseline"}, &out, &errOut); code != 2 {
		t.Fatalf("-update-baseline without -baseline exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "requires -baseline") {
		t.Errorf("stderr %q does not explain the missing flag", errOut.String())
	}
}

// TestBaselineLifecycle drives the full baseline loop: -update-baseline
// acknowledges today's findings, -baseline then passes the unchanged
// tree, reports entries as stale once the debt is fixed, and still
// fails on findings outside the baseline.
func TestBaselineLifecycle(t *testing.T) {
	root, badFile := writeDirtyTree(t)
	baseline := filepath.Join(t.TempDir(), "lint.baseline.json")

	var out, errOut strings.Builder
	if code := run([]string{"-baseline", baseline, "-update-baseline", root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("-update-baseline exited %d (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "wrote 1 finding(s)") {
		t.Errorf("stderr %q does not report the written count", errOut.String())
	}

	// The same tree now passes: the finding is acknowledged debt.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("baselined tree exited %d (stdout %q, stderr %q)", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "1 finding(s) acknowledged") {
		t.Errorf("stderr %q does not report the acknowledged count", errOut.String())
	}

	// A second, non-baselined violation still fails the run.
	extra := filepath.Join(root, "internal", "p", "q.go")
	src := "package p\n\nimport \"os\"\n\n// Env reads ambient state.\nfunc Env() string { return os.Getenv(\"HOME\") }\n"
	if err := os.WriteFile(extra, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, root + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("new finding over baseline exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), "os.Getenv") || strings.Contains(out.String(), "time.Now") {
		t.Errorf("only the fresh finding should print, got:\n%s", out.String())
	}

	// Fixing the baselined debt flips its entry to stale (reported on
	// stderr for cleanup, not a failure).
	if err := os.Remove(extra); err != nil {
		t.Fatal(err)
	}
	clean := "package p\n\n// Now is fixed.\nfunc Now() float64 { return 0 }\n"
	if err := os.WriteFile(badFile, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("fixed tree exited %d (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "no longer fires") {
		t.Errorf("stderr %q does not flag the stale baseline entry", errOut.String())
	}
}

// TestChecksSubset confirms -checks restricts the suite: a file that
// trips determinism passes when only msgprefix runs.
func TestChecksSubset(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "internal", "p"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package p\n\nimport \"time\"\n\n// Now reads the clock.\nfunc Now() float64 { return float64(time.Now().UnixNano()) }\n"
	if err := os.WriteFile(filepath.Join(root, "internal", "p", "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "msgprefix", root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("msgprefix-only run exited %d (stdout %q)", code, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-checks", "determinism", root + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("determinism-only run exited %d, want 1", code)
	}
}
