package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListChecks(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d (stderr %q)", code, errOut.String())
	}
	for _, name := range []string{"determinism", "maprange", "msgprefix", "seedflow"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownCheckRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown -checks exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown check "nope"`) {
		t.Errorf("stderr %q does not name the unknown check", errOut.String())
	}
}

// TestExitStatus drives the binary's contract: nonzero with findings
// (a known-bad fixture placed in-tree), zero on a clean tree.
func TestExitStatus(t *testing.T) {
	dirty := t.TempDir()
	bad, err := os.ReadFile(filepath.Join("..", "..", "internal", "lint", "testdata", "src", "internal", "simbad", "bad_determinism.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dirty, "internal", "simbad"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirty, "internal", "simbad", "bad.go"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{dirty + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("dirty tree exited %d, want 1 (stdout %q, stderr %q)", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[determinism]") {
		t.Errorf("findings missing determinism hit:\n%s", out.String())
	}

	clean := t.TempDir()
	if err := os.MkdirAll(filepath.Join(clean, "internal", "ok"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package ok\n\n// V is fixture data.\nvar V = 1\n"
	if err := os.WriteFile(filepath.Join(clean, "internal", "ok", "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{clean + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("clean tree exited %d (stdout %q, stderr %q)", code, out.String(), errOut.String())
	}
}

// TestChecksSubset confirms -checks restricts the suite: a file that
// trips determinism passes when only msgprefix runs.
func TestChecksSubset(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "internal", "p"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package p\n\nimport \"time\"\n\n// Now reads the clock.\nfunc Now() float64 { return float64(time.Now().UnixNano()) }\n"
	if err := os.WriteFile(filepath.Join(root, "internal", "p", "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "msgprefix", root + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("msgprefix-only run exited %d (stdout %q)", code, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-checks", "determinism", root + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("determinism-only run exited %d, want 1", code)
	}
}
