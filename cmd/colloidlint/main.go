// Command colloidlint runs the repo's in-tree static-analysis suite
// (internal/lint): stdlib-only analyzers that enforce the simulator's
// determinism and convention contracts. It needs no module proxy, so it
// runs in CI environments where staticcheck's offline gate skips.
//
// Usage:
//
//	colloidlint [-list] [-checks determinism,maprange] [./...]
//
// Each argument is a directory tree to lint ("dir/..." and "dir" are
// equivalent; both walk recursively, skipping testdata, vendor and
// hidden directories). With no arguments it lints ./... — the whole
// repository when run from the root, which is how `make lint` invokes
// it. Findings print as
//
//	file:line: [check] message
//
// and any unsuppressed finding makes the exit status nonzero. A finding
// is suppressed by a `//colloid:allow <check> <reason>` comment on the
// offending line or alone on the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"colloid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("colloidlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered checks and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	checks, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, "colloidlint:", err)
		return 2
	}
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	total := 0
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" || root == "." {
			root = "."
		}
		findings, err := lint.TreeChecks(root, checks)
		if err != nil {
			fmt.Fprintln(stderr, "colloidlint:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(stderr, "colloidlint: %d finding(s)\n", total)
		return 1
	}
	return 0
}

// selectChecks resolves the -checks flag against the registry.
func selectChecks(flagValue string) ([]*lint.Check, error) {
	all := lint.Checks()
	if flagValue == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*lint.Check
	for _, name := range strings.Split(flagValue, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(lint.CheckNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}
