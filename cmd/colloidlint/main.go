// Command colloidlint runs the repo's in-tree static-analysis suite
// (internal/lint): stdlib-only analyzers, type-checked through a
// file-system loader, that enforce the simulator's determinism and
// convention contracts. It needs no module proxy, so it runs in CI
// environments where staticcheck's offline gate skips.
//
// Usage:
//
//	colloidlint [-list] [-checks determinism,maprange] [-json]
//	            [-baseline lint.baseline.json] [-update-baseline] [./...]
//
// Each argument is a directory tree to lint ("dir/..." and "dir" are
// equivalent; both walk recursively, skipping testdata, vendor and
// hidden directories). With no arguments it lints ./... — the whole
// repository when run from the root, which is how `make lint` invokes
// it. Findings print as
//
//	file:line: [check] message
//
// or, under -json, as a JSON array of objects carrying the same fields
// plus the finding's content-addressed id. Any unsuppressed finding
// makes the exit status nonzero. A finding is suppressed by a
// `//colloid:allow <check> <reason>` comment on the offending line or
// alone on the line above; the reason is mandatory.
//
// With -baseline, findings whose id appears in the given baseline file
// are acknowledged debt: they neither print nor fail the run (stale
// baseline entries are reported on stderr for cleanup). With
// -update-baseline, the current findings are written to the baseline
// file instead and the run exits 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"colloid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	ID    string `json:"id"`
	File  string `json:"file"`
	Line  int    `json:"line"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("colloidlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered checks and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	baselinePath := fs.String("baseline", "", "baseline file; findings whose id it contains are acknowledged and do not fail the run")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "colloidlint: -update-baseline requires -baseline <path>")
		return 2
	}
	checks, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, "colloidlint:", err)
		return 2
	}
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	var findings []lint.Finding
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" || root == "." {
			root = "."
		}
		found, err := lint.TreeChecks(root, checks)
		if err != nil {
			fmt.Fprintln(stderr, "colloidlint:", err)
			return 2
		}
		findings = append(findings, found...)
	}
	if *updateBaseline {
		if err := lint.NewBaseline(findings).Write(*baselinePath); err != nil {
			fmt.Fprintln(stderr, "colloidlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "colloidlint: wrote %d finding(s) to %s\n", len(findings), *baselinePath)
		return 0
	}
	if *baselinePath != "" {
		baseline, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "colloidlint:", err)
			return 2
		}
		fresh, stale := baseline.Filter(findings)
		for _, e := range stale {
			fmt.Fprintf(stderr, "colloidlint: baseline entry %s (%s in %s) no longer fires; remove it\n", e.ID, e.Check, e.File)
		}
		if n := len(findings) - len(fresh); n > 0 {
			fmt.Fprintf(stderr, "colloidlint: %d finding(s) acknowledged by baseline %s\n", n, *baselinePath)
		}
		findings = fresh
	}
	if err := emit(stdout, findings, *jsonOut); err != nil {
		fmt.Fprintln(stderr, "colloidlint:", err)
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "colloidlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// emit writes findings in text or JSON form.
func emit(stdout io.Writer, findings []lint.Finding, asJSON bool) error {
	if !asJSON {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
		return nil
	}
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			ID:    lint.FindingID(f),
			File:  f.Pos.Filename,
			Line:  f.Pos.Line,
			Check: f.Check,
			Msg:   f.Msg,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectChecks resolves the -checks flag against the registry.
func selectChecks(flagValue string) ([]*lint.Check, error) {
	all := lint.Checks()
	if flagValue == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*lint.Check
	for _, name := range strings.Split(flagValue, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(lint.CheckNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}
