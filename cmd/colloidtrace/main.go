// Command colloidtrace runs a single tiered-memory scenario and emits
// its per-interval time series (throughput, per-tier latency and
// bandwidth, migration rate) as CSV — the raw material behind every
// line plot in the paper.
//
// Examples:
//
//	# HeMem+Colloid under a contention step at t=30s
//	colloidtrace -system hemem -colloid -intensity 0 -step-intensity 3 -step-at 30 -duration 60
//
//	# Vanilla MEMTIS with a hot-set shift
//	colloidtrace -system memtis -hotshift-at 100 -duration 200 -o memtis.csv
//
//	# Object-size variant of GUPS on a custom hot set
//	colloidtrace -system tpp -colloid -object 4096 -hot-gb 12 -ws-gb 48
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"colloid/internal/core"
	"colloid/internal/heat"
	"colloid/internal/hemem"
	"colloid/internal/memsys"
	"colloid/internal/memtis"
	"colloid/internal/obs"
	"colloid/internal/related"
	"colloid/internal/scenario"
	"colloid/internal/sim"
	"colloid/internal/tpp"
	"colloid/internal/trace"
	"colloid/internal/workloads"
)

func main() {
	var (
		system     = flag.String("system", "hemem", "tiering system: hemem|tpp|memtis|batman|carrefour|none")
		withCol    = flag.Bool("colloid", false, "enable the Colloid controller (hemem/tpp/memtis)")
		intensity  = flag.Int("intensity", 0, "initial antagonist intensity (0-3)")
		stepAt     = flag.Float64("step-at", 0, "time (sec) to change the antagonist intensity (0 = never)")
		stepTo     = flag.Int("step-intensity", 0, "intensity applied at -step-at")
		hotshiftAt = flag.Float64("hotshift-at", 0, "time (sec) to replace the hot set (0 = never)")
		duration   = flag.Float64("duration", 60, "simulated seconds")
		wsGB       = flag.Int64("ws-gb", 72, "working set (GiB)")
		hotGB      = flag.Int64("hot-gb", 24, "hot set (GiB)")
		object     = flag.Int64("object", 64, "GUPS object size (bytes)")
		cores      = flag.Int("cores", 15, "application cores")
		region     = flag.Int("region", 0, "track heat per N-page region instead of exactly (power of two, 0 = exact)")
		forecast   = flag.String("forecast", "", "region-heat forecaster: passthrough, trend, ewma[:alpha], or a '>' chain like trend>ewma:0.5 (requires -region)")
		sample     = flag.Float64("sample", 1, "trace sampling interval (sec)")
		seed       = flag.Uint64("seed", 1, "random seed")
		out        = flag.String("o", "", "output CSV path (default stdout)")
		metrics    = flag.String("metrics", "", "write the obs event trace here (.csv = CSV, else JSONL)")
		metricsSum = flag.String("metrics-summary", "", "write the obs counter/gauge summary JSON here")
	)
	flag.Parse()

	if err := run(settings{
		system: *system, colloid: *withCol,
		intensity: *intensity, stepAt: *stepAt, stepTo: *stepTo,
		hotshiftAt: *hotshiftAt, duration: *duration,
		wsGB: *wsGB, hotGB: *hotGB, object: *object, cores: *cores,
		region: *region, forecast: *forecast, sample: *sample, seed: *seed, out: *out,
		metrics: *metrics, metricsSummary: *metricsSum,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "colloidtrace:", err)
		os.Exit(1)
	}
}

type settings struct {
	system             string
	colloid            bool
	intensity, stepTo  int
	stepAt, hotshiftAt float64
	duration           float64
	wsGB, hotGB        int64
	object             int64
	cores              int
	region             int
	forecast           string
	sample             float64
	seed               uint64
	out                string
	metrics            string
	metricsSummary     string
}

// validate reports every problem with the flag set at once, combining
// cmd-level checks with sim.Config.Validate.
func (s settings) validate(cfg sim.Config) error {
	var errs []error
	if _, err := makeSystem(s.system, s.colloid); err != nil {
		errs = append(errs, err)
	}
	if s.duration <= 0 {
		errs = append(errs, fmt.Errorf("non-positive -duration %v", s.duration))
	}
	if s.intensity < 0 || s.stepTo < 0 {
		errs = append(errs, fmt.Errorf("negative antagonist intensity (-intensity %d, -step-intensity %d)",
			s.intensity, s.stepTo))
	}
	if s.hotGB > s.wsGB {
		errs = append(errs, fmt.Errorf("-hot-gb %d exceeds -ws-gb %d", s.hotGB, s.wsGB))
	}
	if s.object <= 0 {
		errs = append(errs, fmt.Errorf("non-positive -object %d", s.object))
	}
	if s.cores <= 0 {
		errs = append(errs, fmt.Errorf("non-positive -cores %d", s.cores))
	}
	if err := cfg.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func run(s settings) error {
	topo, err := memsys.NewTopology(memsys.DualSocketXeonDefault(), memsys.DualSocketXeonRemote())
	if err != nil {
		return err
	}
	gups := &workloads.GUPS{
		WorkingSetBytes: s.wsGB * memsys.GiB,
		HotSetBytes:     s.hotGB * memsys.GiB,
		HotProb:         0.9,
		ObjectBytes:     s.object,
		Cores:           s.cores,
	}
	var reg *obs.Registry
	if s.metrics != "" || s.metricsSummary != "" {
		reg = obs.NewRegistry()
		reg.EnableTrace(0)
	}
	spec, err := heatSpec(s.region, s.forecast)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Topology:        topo,
		WorkingSetBytes: gups.WorkingSetBytes,
		Profile:         gups.Profile(),
		Antagonist:      workloads.Intensity(s.intensity),
		Heat:            spec,
		Seed:            s.seed,
		SampleEverySec:  s.sample,
		Obs:             reg,
	}
	if err := s.validate(cfg); err != nil {
		return err
	}
	sys, err := makeSystem(s.system, s.colloid)
	if err != nil {
		return err
	}
	var events []scenario.Event
	if s.stepAt > 0 {
		events = append(events, scenario.AntagonistStep{
			AtSec:     s.stepAt,
			Intensity: workloads.Intensity(s.stepTo),
		})
	}
	if s.hotshiftAt > 0 {
		events = append(events, scenario.WorkloadShift{AtSec: s.hotshiftAt, Shift: gups.ShiftHotSet})
	}
	opts := []sim.Option{sim.WithSystem(sys)}
	if len(events) > 0 {
		opts = append(opts, sim.WithScenario(&scenario.Scenario{Name: "colloidtrace", Events: events}))
	}
	engine, err := sim.New(cfg, opts...)
	if err != nil {
		return err
	}
	if err := gups.Install(engine.AS(), engine.WorkloadRNG()); err != nil {
		return err
	}
	if err := engine.Run(s.duration); err != nil {
		return err
	}

	if err := writeMetrics(s, reg); err != nil {
		return err
	}

	w := os.Stdout
	if s.out != "" {
		f, err := os.Create(s.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.WriteSamplesCSV(w, engine.Samples(), topo.NumTiers())
}

// writeMetrics dumps the event trace (-metrics) and the counter/gauge
// summary (-metrics-summary) if requested.
func writeMetrics(s settings, reg *obs.Registry) error {
	if s.metrics != "" {
		f, err := os.Create(s.metrics)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(s.metrics, ".csv") {
			err = obs.WriteEventsCSV(f, reg.Events())
		} else {
			err = obs.WriteEventsJSONL(f, reg.Events())
		}
		if err != nil {
			return err
		}
		if n := reg.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "colloidtrace: event trace overflowed, %d oldest events dropped\n", n)
		}
	}
	if s.metricsSummary != "" {
		f, err := os.Create(s.metricsSummary)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := reg.WriteSummaryJSON(f); err != nil {
			return err
		}
	}
	return nil
}

// heatSpec maps the -region/-forecast flags onto a tracker spec: region
// 0 keeps the exact per-page counters, anything else selects region
// tracking at that granularity with the requested forecaster chain. A
// forecaster with -region 0 is rejected by sim.Config.Validate (exact
// tracking has nothing to forecast), as is a bad granularity.
func heatSpec(regionPages int, forecast string) (heat.Spec, error) {
	f, err := heat.ParseForecaster(forecast)
	if err != nil {
		return heat.Spec{}, err
	}
	if regionPages == 0 {
		return heat.Spec{Forecaster: f}, nil
	}
	return heat.Spec{Kind: heat.Region, RegionPages: regionPages, Forecaster: f}, nil
}

// makeSystem builds the requested tiering system; "none" runs static
// first-fit placement.
func makeSystem(name string, withColloid bool) (sim.System, error) {
	var opts *core.Options
	if withColloid {
		opts = &core.Options{}
	}
	switch name {
	case "hemem":
		return hemem.New(hemem.Config{Colloid: opts}), nil
	case "tpp":
		return tpp.New(tpp.Config{Colloid: opts}), nil
	case "memtis":
		return memtis.New(memtis.Config{Colloid: opts}), nil
	case "batman":
		return related.New(related.Config{Policy: related.BATMAN}), nil
	case "carrefour":
		return related.New(related.Config{Policy: related.Carrefour}), nil
	case "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}
