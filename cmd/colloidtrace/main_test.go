package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colloid/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSettings is a small deterministic contention-step run; changing
// it invalidates testdata/trace_golden.csv (regenerate with -update).
func goldenSettings(out string) settings {
	return settings{
		system: "hemem", colloid: true,
		intensity: 0, stepAt: 3, stepTo: 2,
		duration: 6, wsGB: 24, hotGB: 8, object: 64, cores: 15,
		sample: 1, seed: 1, out: out,
	}
}

func TestGoldenCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	if err := run(goldenSettings(out)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.csv")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("CSV output drifted from %s (re-run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

func TestGoldenCSVParses(t *testing.T) {
	// The emitted file must stay readable by the package that defines
	// the format, with the documented header and one row per sample.
	out := filepath.Join(t.TempDir(), "trace.csv")
	if err := run(goldenSettings(out)); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := trace.ReadSamplesCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 6 {
		t.Fatalf("%d samples for a 6 s run at 1 s sampling, want 6", len(samples))
	}
	for _, s := range samples {
		if s.OpsPerSec <= 0 {
			t.Errorf("non-positive throughput at t=%v", s.TimeSec)
		}
		if len(s.LatencyNs) != 2 {
			t.Errorf("tier count = %d at t=%v, want 2", len(s.LatencyNs), s.TimeSec)
		}
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(raw), "\n", 2)[0]
	wantHeader := "t_sec,ops_per_sec,migration_bytes_per_sec," +
		"latency_ns_t0,app_share_t0,app_bytes_per_sec_t0," +
		"latency_ns_t1,app_share_t1,app_bytes_per_sec_t1"
	if header != wantHeader {
		t.Errorf("header = %q, want %q", header, wantHeader)
	}
}
