// Command colloidsim reproduces the paper's evaluation artifacts.
//
// Usage:
//
//	colloidsim -list
//	colloidsim -exp fig1
//	colloidsim -exp fig5,fig6a -quick
//	colloidsim -exp all -quick -seed 7
//
// Each experiment prints the table corresponding to a figure or table
// in "Tiered Memory Management: Access Latency is the Key!" (SOSP'24);
// see EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"colloid/internal/experiments"
	"colloid/internal/trace"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		exp    = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		quick  = flag.Bool("quick", false, "shorter runs (noisier numbers, same shapes)")
		seed   = flag.Uint64("seed", 1, "random seed")
		csvDir = flag.String("csv", "", "also write each table as <dir>/<id>.csv")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.List() {
			fmt.Println("  " + id)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, id := range experiments.List() {
			if id == "fig9-series" {
				continue // bulky; run explicitly
			}
			ids = append(ids, id)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tab, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(tab.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "csv for %s: %v\n", id, err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeCSV saves the table under dir as <id>.csv.
func writeCSV(dir string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteTableCSV(f, tab.Columns, tab.Rows); err != nil {
		return err
	}
	return f.Close()
}
