// Command colloidsim reproduces the paper's evaluation artifacts.
//
// Usage:
//
//	colloidsim -list
//	colloidsim -exp fig1
//	colloidsim -exp fig5,fig6a -quick
//	colloidsim -experiments all -quick -seed 7 -parallel 8
//
// Each experiment prints the table corresponding to a figure or table
// in "Tiered Memory Management: Access Latency is the Key!" (SOSP'24);
// see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Experiments decompose into independent arms that run on a worker
// pool (-parallel, default GOMAXPROCS). Each arm draws a seed derived
// only from the experiment name, arm index and -seed, so results are
// bit-identical regardless of worker count or scheduling. Per-arm
// wall-clock timings stream to BENCH_<id>.json (-bench selects the
// directory; -bench "" disables).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"colloid/internal/experiments"
	"colloid/internal/trace"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		exp      = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		quick    = flag.Bool("quick", false, "shorter runs (noisier numbers, same shapes)")
		seed     = flag.Uint64("seed", 1, "random seed")
		csvDir   = flag.String("csv", "", "also write each table as <dir>/<id>.csv")
		parallel = flag.Int("parallel", 0, "arm workers per experiment (0 = GOMAXPROCS, 1 = serial)")
		benchDir = flag.String("bench", ".", "directory for BENCH_<id>.json timing reports (empty = off)")
	)
	flag.Var(aliasValue{exp}, "experiments", "alias for -exp")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.List() {
			fmt.Println("  " + id)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, id := range experiments.List() {
			if id == "fig9-series" {
				continue // bulky; run explicitly
			}
			ids = append(ids, id)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	opts := experiments.Options{
		Quick:       *quick,
		Seed:        *seed,
		Parallelism: *parallel,
		BenchDir:    *benchDir,
	}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tab, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(tab.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "csv for %s: %v\n", id, err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// aliasValue forwards a flag to another flag's backing string.
type aliasValue struct{ s *string }

func (a aliasValue) String() string {
	if a.s == nil {
		return ""
	}
	return *a.s
}
func (a aliasValue) Set(v string) error { *a.s = v; return nil }

// writeCSV saves the table under dir as <id>.csv.
func writeCSV(dir string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteTableCSV(f, tab.Columns, tab.Rows); err != nil {
		return err
	}
	return f.Close()
}
