// Command colloidsim reproduces the paper's evaluation artifacts.
//
// Usage:
//
//	colloidsim -list
//	colloidsim -exp fig1
//	colloidsim -exp fig5,fig6a -quick
//	colloidsim -experiments all -quick -seed 7 -parallel 8
//
// Each experiment prints the table corresponding to a figure or table
// in "Tiered Memory Management: Access Latency is the Key!" (SOSP'24);
// see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Experiments decompose into independent arms that run on a worker
// pool (-parallel, default GOMAXPROCS). Each arm draws a seed derived
// only from the experiment name, arm index and -seed, so results are
// bit-identical regardless of worker count or scheduling. Per-arm
// wall-clock timings stream to BENCH_<id>.json (-bench selects the
// directory; -bench "" disables).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"colloid/internal/experiments"
	"colloid/internal/heat"
	"colloid/internal/obs"
	"colloid/internal/scenario"
	"colloid/internal/trace"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		exp      = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		quick    = flag.Bool("quick", false, "shorter runs (noisier numbers, same shapes)")
		seed     = flag.Uint64("seed", 1, "random seed")
		csvDir   = flag.String("csv", "", "also write each table as <dir>/<id>.csv")
		parallel = flag.Int("parallel", 0, "arm workers per experiment (0 = GOMAXPROCS, 1 = serial)")
		shardW   = flag.Int("shard-workers", 0, "per-quantum page-pipeline workers inside each simulation (0 = serial; results are identical at any value)")
		region   = flag.Int("region", 0, "default heat-tracking granularity: track per N-page region instead of exactly (power of two, 0 = exact); families sweeping their own fidelity axis override it per arm")
		forecast = flag.String("forecast", "", "region-heat forecaster for the default tracker: passthrough, trend, ewma[:alpha], or a '>' chain (requires -region)")
		benchDir = flag.String("bench", ".", "directory for BENCH_<id>.json timing reports (empty = off)")
		metrics  = flag.String("metrics", "", "write the merged obs metric summary JSON here")
		scName   = flag.String("scenario", "", "run one builtin fault-injection scenario by name (see -list)")
	)
	flag.Var(aliasValue{exp}, "experiments", "alias for -exp")
	flag.Parse()

	if *scName != "" {
		// -scenario x is shorthand for -exp scenario-x, validated
		// against the builtin registry for a friendlier error.
		if _, err := scenario.Builtin(*scName); err != nil {
			fmt.Fprintln(os.Stderr, "colloidsim:", err)
			os.Exit(2)
		}
		if *exp != "" {
			*exp += ","
		}
		*exp += "scenario-" + *scName
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.List() {
			fmt.Println("  " + id)
		}
		fmt.Println("\nbuiltin scenarios (-scenario <name>):")
		for _, name := range scenario.BuiltinNames() {
			fmt.Println("  " + name)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, id := range experiments.List() {
			if id == "fig9-series" {
				continue // bulky; run explicitly
			}
			if strings.HasPrefix(id, "scenario-") {
				continue // subsumed by the "scenarios" family
			}
			ids = append(ids, id)
		}
	} else {
		ids = strings.Split(*exp, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
		}
	}

	heatSpec, heatErr := heatSpecFor(*region, *forecast)
	if err := validateFlags(ids, *parallel, *shardW, heatErr, heatSpec); err != nil {
		fmt.Fprintln(os.Stderr, "colloidsim:", err)
		os.Exit(2)
	}

	opts := experiments.Options{
		Quick:        *quick,
		Seed:         *seed,
		Parallelism:  *parallel,
		BenchDir:     *benchDir,
		ShardWorkers: *shardW,
		Heat:         heatSpec,
	}
	if *metrics != "" {
		opts.Metrics = obs.NewRegistry()
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(tab.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "csv for %s: %v\n", id, err)
				failed++
			}
		}
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, opts.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// validateFlags reports every bad flag at once (experiment ids are
// checked against the registry; the sim configs themselves are
// validated by sim.New inside each arm).
func validateFlags(ids []string, parallel, shardWorkers int, heatErr error, heatSpec heat.Spec) error {
	var errs []error
	known := make(map[string]bool, len(experiments.List()))
	for _, id := range experiments.List() {
		known[id] = true
	}
	for _, id := range ids {
		if !known[id] {
			errs = append(errs, fmt.Errorf("unknown experiment %q (use -list)", id))
		}
	}
	if parallel < 0 {
		errs = append(errs, fmt.Errorf("negative -parallel %d", parallel))
	}
	if shardWorkers < 0 {
		errs = append(errs, fmt.Errorf("negative -shard-workers %d", shardWorkers))
	}
	if heatErr != nil {
		errs = append(errs, heatErr)
	} else if err := heatSpec.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("-region/-forecast: %w", err))
	}
	return errors.Join(errs...)
}

// heatSpecFor maps -region/-forecast onto the default tracker spec
// (experiments.Options.Heat): region 0 keeps exact counters, anything
// else tracks at that granularity with the requested forecaster chain.
func heatSpecFor(regionPages int, forecast string) (heat.Spec, error) {
	f, err := heat.ParseForecaster(forecast)
	if err != nil {
		return heat.Spec{}, err
	}
	if regionPages == 0 {
		return heat.Spec{Forecaster: f}, nil
	}
	return heat.Spec{Kind: heat.Region, RegionPages: regionPages, Forecaster: f}, nil
}

// writeMetrics dumps the cross-experiment merged metric summary.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := reg.WriteSummaryJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// aliasValue forwards a flag to another flag's backing string.
type aliasValue struct{ s *string }

func (a aliasValue) String() string {
	if a.s == nil {
		return ""
	}
	return *a.s
}
func (a aliasValue) Set(v string) error { *a.s = v; return nil }

// writeCSV saves the table under dir as <id>.csv.
func writeCSV(dir string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteTableCSV(f, tab.Columns, tab.Rows); err != nil {
		return err
	}
	return f.Close()
}
