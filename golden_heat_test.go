package colloid

import (
	"fmt"
	"testing"

	"colloid/internal/core"
	"colloid/internal/heat"
	"colloid/internal/hemem"
	"colloid/internal/memtis"
	"colloid/internal/sim"
	"colloid/internal/simtest"
	"colloid/internal/tpp"
	"colloid/internal/workloads"
)

// TestGoldenRegionTrackerFidelity pins the tracker seam: a
// RegionTracker at granularity 1 with the pass-through forecaster must
// reproduce the exact tracker's behavior bit for bit, so every system
// run on it must land on the SAME golden checksums
// TestGoldenPlacementTraces pins for exact tracking — same scenario,
// same seed, every worker count. A mismatch here means the region
// tracker's growth rule, cooling trigger, shard plan, or query ordering
// diverged from the exact tracker's; there is no separate golden to
// update.
func TestGoldenRegionTrackerFidelity(t *testing.T) {
	golden := map[string]uint64{
		"hemem":          0xedecbe41f9196929,
		"hemem+colloid":  0xb6d39d4a3494081d,
		"tpp":            0xb2ed98fc88698975,
		"tpp+colloid":    0x5342c7cab5d7c6ed,
		"memtis":         0x1b3e72cc001f543f,
		"memtis+colloid": 0x251dbb62625142a0,
	}
	systems := map[string]func() sim.System{
		"hemem":          func() sim.System { return hemem.New(hemem.Config{}) },
		"hemem+colloid":  func() sim.System { return hemem.New(hemem.Config{Colloid: &core.Options{}}) },
		"tpp":            func() sim.System { return tpp.New(tpp.Config{}) },
		"tpp+colloid":    func() sim.System { return tpp.New(tpp.Config{Colloid: &core.Options{}}) },
		"memtis":         func() sim.System { return memtis.New(memtis.Config{}) },
		"memtis+colloid": func() sim.System { return memtis.New(memtis.Config{Colloid: &core.Options{}}) },
	}
	workerCounts := []int{1, 2, 4, 7}
	if testing.Short() {
		workerCounts = []int{1, 4}
	}
	for name, mk := range systems {
		name, mk := name, mk
		for _, w := range workerCounts {
			w := w
			t.Run(fmt.Sprintf("%s/workers=%d", name, w), func(t *testing.T) {
				e, _ := simtest.Run(t, mk(), simtest.Scenario{
					Antagonist: workloads.Intensity3x,
					Heat:       heat.Spec{Kind: heat.Region, RegionPages: 1},
					Seconds:    5,
					Seed:       42,
					Workers:    w,
				})
				got := traceChecksum(e)
				if got != golden[name] {
					t.Fatalf("region/1 checksum = %#x, exact golden %#x — coarse tracker not bit-identical at granularity 1 (workers=%d)", got, golden[name], w)
				}
			})
		}
	}
}
