# Tier-1 verification plus the extra checks CI runs. Go only; no
# external tools required (staticcheck is fetched through the module
# proxy when reachable and skipped otherwise).

GO ?= go
STATICCHECK_VERSION ?= 2023.1.7
STATICCHECK := $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

.PHONY: ci verify vet staticcheck lint lint-fixtures race bench bench-smoke bench-scale bench-tenants bench-heat clean

# Everything CI gates on.
ci: verify vet staticcheck lint race bench-smoke bench-scale bench-tenants bench-heat

# Tier-1: the whole tree must build and every test must pass.
verify:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Pinned staticcheck, probed first so an offline machine (no module
# proxy) degrades to a warning instead of a hard failure; when the probe
# succeeds, findings fail the build as usual.
staticcheck:
	@if $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck: module proxy unreachable, skipping (pin: $(STATICCHECK_VERSION))"; \
	fi

# In-tree static analysis (internal/lint via cmd/colloidlint): eleven
# typed checks enforcing the determinism and convention contracts — no
# wall clocks, global math/rand, env reads or unsorted map iteration on
# simulation paths, "<pkg>: " diagnostic prefixes, stats.RNG-only seed
# flow, obs name grammar, no by-value lock copies, no loop-var/RNG
# capture into goroutines, no references to Deprecated: identifiers, no
# stale suppressions, no order-dependent float folds. Stdlib-only, so
# unlike staticcheck it runs even with no module proxy. Findings are
# diffed against the committed lint.baseline.json (kept empty: fix or
# //colloid:allow <check> <reason>, don't baseline). The `|| { ...;
# exit 1; }` tail re-asserts the failure explicitly so the nonzero exit
# survives `make -k`/`make ci` composition instead of scrolling past.
lint:
	@$(GO) run ./cmd/colloidlint -json -baseline lint.baseline.json ./... || { \
		echo "lint: non-baselined findings above; fix them (do not grow lint.baseline.json)" >&2; \
		exit 1; \
	}

# Fast iteration loop for check development: only the lint engine's own
# tests (fixture golden file, injected-violation probes, driver flags).
lint-fixtures:
	$(GO) test ./internal/lint/ ./cmd/colloidlint/

# Race-detector pass over the parallel experiment runner, the engine,
# the scenario/fault-injection subsystem, the migration engine, the
# page index, (since the sharded per-quantum pipeline) the access
# sampler/tracker and the shard harness, the multi-tenant cluster
# engine, the region-granularity heat tracker, and the root sharded
# golden and churn tests. -short skips the long shape tests but not
# the runner's parallel-vs-serial determinism tests or the
# sharded-step path.
race:
	$(GO) test -race -short ./internal/experiments/ ./internal/sim/ ./internal/scenario/ ./internal/migrate/ ./internal/pages/ ./internal/access/ ./internal/shard/ ./internal/tenant/ ./internal/heat/
	$(GO) test -race -short -run 'TestShardedChurnBitIdentical|TestGoldenPlacementTraces|TestGoldenTenantTraces' .

# Headline figure metrics as benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# One-iteration smoke of the instrumentation-overhead benchmark: proves
# the obs plumbing still runs end to end without paying for a full
# benchstat-quality measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench=ObsOverhead -benchtime=1x .

# One-iteration smoke of the page-granularity scaling pipeline: the
# quantum-step benchmark at 10^4 pages swept across the sharded worker
# axis, plus the quick scale experiment through the standard runner.
# For real numbers use
# `go test -bench=ScaleQuantumStep -benchtime=30x .` (10^6-page arm
# included).
bench-scale:
	$(GO) test -run '^$$' -bench='ScaleQuantumStep/pages=10000/|^BenchmarkScale$$' -benchtime=1x .

# One-iteration smoke of the multi-tenant cluster: the quick tenants
# experiment (8 tenants, both arbitration policies, heat modes exact +
# qos — the latter runs region/64 and region/1024 trackers, so the
# coarse-tracking seam is exercised — plus the 10^6-page scale arm)
# through the standard runner. For real numbers run
# `go run ./cmd/colloidsim -exp tenants` (100 tenants x 10^5 pages,
# full heat axis, 10^8-page scale arm).
bench-tenants:
	$(GO) test -run '^$$' -bench='^BenchmarkTenants$$' -benchtime=1x .

# One-iteration smoke of the heat-tracking family: the quick fidelity
# ablation (exact vs region granularities 1/4/64/1024 plus a chained
# forecaster) and the region-tracker scale arm through the standard
# runner. For real numbers run `go run ./cmd/colloidsim -exp heat`
# (2^24-page scale arm).
bench-heat:
	$(GO) test -run '^$$' -bench='^BenchmarkHeat$$' -benchtime=1x .

clean:
	rm -f BENCH_*.json
