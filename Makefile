# Tier-1 verification plus the extra checks CI runs. Go only; no
# external tools required.

GO ?= go

.PHONY: ci verify vet race bench bench-smoke clean

# Everything CI gates on.
ci: verify vet race bench-smoke

# Tier-1: the whole tree must build and every test must pass.
verify:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the parallel experiment runner and the
# engine. -short skips the long shape tests but not the runner's
# parallel-vs-serial determinism tests.
race:
	$(GO) test -race -short ./internal/experiments/ ./internal/sim/

# Headline figure metrics as benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# One-iteration smoke of the instrumentation-overhead benchmark: proves
# the obs plumbing still runs end to end without paying for a full
# benchstat-quality measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench=ObsOverhead -benchtime=1x .

clean:
	rm -f BENCH_*.json
