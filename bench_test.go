package colloid

// Benchmark harness: one benchmark per paper table/figure. Each
// iteration regenerates the artifact in Quick mode (shorter simulated
// durations; identical shapes) and reports the figure's headline number
// as a custom metric so regressions in reproduction quality are visible
// in benchstat output:
//
//	go test -bench=. -benchmem
//
// For the full-length tables use cmd/colloidsim without -quick.

import (
	"strconv"
	"strings"
	"testing"

	"colloid/internal/core"
	"colloid/internal/experiments"
	"colloid/internal/hemem"
	"colloid/internal/obs"
	"colloid/internal/simtest"
	"colloid/internal/workloads"
)

// runExperiment executes one experiment per benchmark iteration and
// returns the last table for metric extraction.
func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Run(id, experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// cellFloat parses a numeric cell, tolerating the unit suffixes the
// tables use (M, x, %, GB/s, ns).
func cellFloat(b *testing.B, cell string) float64 {
	b.Helper()
	s := strings.TrimSpace(cell)
	for _, suf := range []string{"Mops", "GB/s", "MB/s", "ns", "M", "x", "%", "B", "s"} {
		s = strings.TrimSuffix(s, suf)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

// BenchmarkFig1 regenerates Figure 1 and reports the worst baseline
// gap from best-case at 3x contention (paper: ~2.3-2.46x).
func BenchmarkFig1(b *testing.B) {
	tab := runExperiment(b, "fig1")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cellFloat(b, last[len(last)-1]), "worst-gap-3x")
}

// BenchmarkFig2a reports the default/alternate latency ratio at 3x for
// HeMem's packed placement (paper: ~2.4x).
func BenchmarkFig2a(b *testing.B) {
	tab := runExperiment(b, "fig2a")
	for _, row := range tab.Rows {
		if row[0] == "3x" && row[1] == "hemem" {
			b.ReportMetric(cellFloat(b, row[4]), "latency-ratio-3x")
		}
	}
}

// BenchmarkFig2b reports the best-case default-tier bandwidth share at
// 3x (paper: ~4%).
func BenchmarkFig2b(b *testing.B) {
	tab := runExperiment(b, "fig2b")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cellFloat(b, last[1]), "best-default-share-pct-3x")
}

// BenchmarkFig4 regenerates the watermark dynamics trace and reports
// the number of scenarios that converged (want 3).
func BenchmarkFig4(b *testing.B) {
	tab := runExperiment(b, "fig4")
	converged := 3.0
	for _, n := range tab.Notes {
		if strings.Contains(n, "WARNING") {
			converged--
		}
	}
	b.ReportMetric(converged, "scenarios-converged")
}

// BenchmarkFig5 reports HeMem+Colloid's gain over HeMem at 3x (paper:
// ~2.3x).
func BenchmarkFig5(b *testing.B) {
	tab := runExperiment(b, "fig5")
	last := tab.Rows[len(tab.Rows)-1]
	vanilla := cellFloat(b, last[2])
	colloid := cellFloat(b, last[3])
	b.ReportMetric(colloid/vanilla, "hemem-colloid-gain-3x")
}

// BenchmarkFig6a reports HeMem+Colloid's default-tier bandwidth share
// at 3x (paper: single-digit percent, tracking best-case).
func BenchmarkFig6a(b *testing.B) {
	tab := runExperiment(b, "fig6a")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cellFloat(b, last[2]), "colloid-default-share-pct-3x")
}

// BenchmarkFig6b reports the latency ratio under Colloid at 3x (paper:
// far below the 2.4x of Figure 2(a)).
func BenchmarkFig6b(b *testing.B) {
	tab := runExperiment(b, "fig6b")
	for _, row := range tab.Rows {
		if row[0] == "3x" && strings.HasPrefix(row[1], "hemem") {
			b.ReportMetric(cellFloat(b, row[4]), "latency-ratio-3x")
		}
	}
}

// BenchmarkFig7 reports HeMem+Colloid's gain at the harshest cell
// (2.7x alternate latency, 3x contention; paper: ~1.76x).
func BenchmarkFig7(b *testing.B) {
	tab := runExperiment(b, "fig7")
	for _, row := range tab.Rows {
		if row[0] == "hemem" && row[1] == "2.7x" {
			b.ReportMetric(cellFloat(b, row[5]), "gain-2.7x-3x")
		}
	}
}

// BenchmarkFig8 reports HeMem+Colloid's gain for 4 KB objects at 0x
// contention (paper: ~1.17-1.31x — the no-antagonist win).
func BenchmarkFig8(b *testing.B) {
	tab := runExperiment(b, "fig8")
	for _, row := range tab.Rows {
		if row[0] == "hemem" && row[1] == "4096B" {
			b.ReportMetric(cellFloat(b, row[2]), "gain-4k-0x")
		}
	}
}

// BenchmarkFig9 reports HeMem+Colloid's convergence time after the
// contention step (paper: ~10 s).
func BenchmarkFig9(b *testing.B) {
	tab := runExperiment(b, "fig9")
	for _, row := range tab.Rows {
		if row[0] == "contention-step" && row[1] == "hemem+colloid" {
			b.ReportMetric(cellFloat(b, row[4]), "conv-sec")
		}
	}
}

// BenchmarkFig10 reports HeMem+Colloid's peak migration rate on the
// hot-set shift (paper: does not exceed vanilla HeMem's peak).
func BenchmarkFig10(b *testing.B) {
	tab := runExperiment(b, "fig10")
	var vanillaPeak, colloidPeak float64
	for _, row := range tab.Rows {
		if row[0] == "hotset-shift@0x" {
			if row[1] == "hemem" {
				vanillaPeak = cellFloat(b, row[2])
			} else {
				colloidPeak = cellFloat(b, row[2])
			}
		}
	}
	if vanillaPeak > 0 {
		b.ReportMetric(colloidPeak/vanillaPeak, "peak-ratio")
	}
}

// BenchmarkFig11a/b/c report the best Colloid gain at 3x for each real
// application (paper: 2.12x GAPBS, 1.25x Silo, 1.93x CacheLib).
func BenchmarkFig11a(b *testing.B) { benchFig11(b, "fig11a") }

// BenchmarkFig11b is the Silo arm of Figure 11.
func BenchmarkFig11b(b *testing.B) { benchFig11(b, "fig11b") }

// BenchmarkFig11c is the CacheLib arm of Figure 11.
func BenchmarkFig11c(b *testing.B) { benchFig11(b, "fig11c") }

func benchFig11(b *testing.B, id string) {
	tab := runExperiment(b, id)
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cellFloat(b, last[len(last)-1]), "best-gain-3x")
}

// BenchmarkOverhead regenerates the Section 5.1 overhead table.
func BenchmarkOverhead(b *testing.B) {
	tab := runExperiment(b, "overhead")
	b.ReportMetric(float64(len(tab.Rows)), "systems")
}

// BenchmarkRelated regenerates the Section 6 related-work comparison
// and reports Colloid's advantage over the better of BATMAN/Carrefour
// at 3x contention.
func BenchmarkRelated(b *testing.B) {
	tab := runExperiment(b, "related")
	last := tab.Rows[len(tab.Rows)-1]
	batman := cellFloat(b, last[2])
	carrefour := cellFloat(b, last[3])
	colloid := cellFloat(b, last[5])
	best := batman
	if carrefour > best {
		best = carrefour
	}
	b.ReportMetric(colloid/best, "colloid-vs-best-related-3x")
}

// BenchmarkAblation regenerates the mechanism ablations and reports how
// many arms recovered from the contention drop (the watermark-reset arm
// must not).
func BenchmarkAblation(b *testing.B) {
	tab := runExperiment(b, "ablation")
	recovered := 0.0
	for _, row := range tab.Rows {
		if row[len(row)-1] == "true" {
			recovered++
		}
	}
	b.ReportMetric(recovered, "arms-recovered")
}

// BenchmarkSensitivity regenerates the epsilon/delta sensitivity grid
// and reports the throughput spread across the grid (stability check).
func BenchmarkSensitivity(b *testing.B) {
	tab := runExperiment(b, "sens")
	lo, hi := 1e18, 0.0
	for _, row := range tab.Rows {
		v := cellFloat(b, row[2])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	b.ReportMetric(hi/lo, "grid-spread")
}

// BenchmarkObsOverhead measures instrumentation cost on the paper's
// 60 s GUPS contention run (hemem+colloid). "off" is the uninstrumented
// baseline: a nil registry hands out nil handles whose methods are
// no-ops, so instrumented code pays only a dead branch. "on" attaches a
// live registry with the event trace enabled — the colloidtrace
// -metrics configuration. The acceptance bar is <5% overhead:
//
//	go test -bench=ObsOverhead -count=5 .
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, mkReg func() *obs.Registry) {
		for i := 0; i < b.N; i++ {
			sys := hemem.New(hemem.Config{Colloid: &core.Options{}})
			simtest.Run(b, sys, simtest.Scenario{
				Antagonist: workloads.Intensity3x,
				Seconds:    60,
				Seed:       1,
				Obs:        mkReg(),
			})
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, func() *obs.Registry { return nil })
	})
	b.Run("on", func(b *testing.B) {
		run(b, func() *obs.Registry {
			r := obs.NewRegistry()
			r.EnableTrace(0)
			return r
		})
	})
}

// BenchmarkScaleQuantumStep measures one quantum of the
// page-granularity hot path (hot-set drift, weight decay, tier-share
// read, PEBS sample batch, batched promote/demote pass) at production
// page counts, after a split/coalesce churn warm-up, across the sharded
// worker axis. ns/op is the per-quantum cost; slots vs live shows the
// effect of free-slot reuse. Speedup from workers>1 requires spare
// cores (GOMAXPROCS>1); results are identical at every worker count
// regardless:
//
//	go test -bench=ScaleQuantumStep -benchtime=30x .
func BenchmarkScaleQuantumStep(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		for _, w := range []int{1, 2, 8} {
			b.Run("pages="+strconv.Itoa(n)+"/workers="+strconv.Itoa(w), func(b *testing.B) {
				p, err := experiments.NewScalePipeline(n, 1, w)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Step()
				}
				b.ReportMetric(float64(p.Slots()), "slots")
				b.ReportMetric(float64(p.Live()), "live")
			})
		}
	}
}

// BenchmarkScale regenerates the scale experiment family end to end
// (quick arm sizes) through the standard runner.
func BenchmarkScale(b *testing.B) {
	runExperiment(b, "scale")
}

// BenchmarkTenants runs the multi-tenant cluster experiment (quick arm
// sizes: 8 tenants under both arbitration policies) through the
// standard runner — the `make bench-tenants` CI smoke.
func BenchmarkTenants(b *testing.B) {
	runExperiment(b, "tenants")
}

// BenchmarkHeat runs the heat-tracking family (quick arm sizes: the
// fidelity ablation across region granularities plus the region-tracker
// scale arm) through the standard runner — the `make bench-heat` CI
// smoke.
func BenchmarkHeat(b *testing.B) {
	runExperiment(b, "heat")
}
