module colloid

go 1.22
