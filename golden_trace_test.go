package colloid

import (
	"fmt"
	"testing"

	"colloid/internal/core"
	"colloid/internal/hemem"
	"colloid/internal/memtis"
	"colloid/internal/sim"
	"colloid/internal/simtest"
	"colloid/internal/tpp"
	"colloid/internal/workloads"
)

// TestGoldenPlacementTraces pins a checksum over the full sample trace
// and final page placement of a short contended GUPS run for every
// tiering system, swept across sharded-pipeline worker counts. The
// scale refactors (live-page index, free-slot reuse, batched migration,
// sharded per-quantum pipeline) must be behaviour-preserving: any
// change to a placement decision, a sample, or iteration order shows up
// here as a checksum mismatch, and a worker-dependent result shows up
// as one worker count disagreeing with the rest. There is ONE golden
// per system, not one per worker count — that is the point. If a hash
// changes on purpose (an intentional semantic fix), update the golden
// to the printed actual value and say why in the commit message.
func TestGoldenPlacementTraces(t *testing.T) {
	golden := map[string]uint64{
		"hemem":          0xedecbe41f9196929,
		"hemem+colloid":  0xb6d39d4a3494081d,
		"tpp":            0xb2ed98fc88698975,
		"tpp+colloid":    0x5342c7cab5d7c6ed,
		"memtis":         0x1b3e72cc001f543f,
		"memtis+colloid": 0x251dbb62625142a0,
	}
	systems := map[string]func() sim.System{
		"hemem":          func() sim.System { return hemem.New(hemem.Config{}) },
		"hemem+colloid":  func() sim.System { return hemem.New(hemem.Config{Colloid: &core.Options{}}) },
		"tpp":            func() sim.System { return tpp.New(tpp.Config{}) },
		"tpp+colloid":    func() sim.System { return tpp.New(tpp.Config{Colloid: &core.Options{}}) },
		"memtis":         func() sim.System { return memtis.New(memtis.Config{}) },
		"memtis+colloid": func() sim.System { return memtis.New(memtis.Config{Colloid: &core.Options{}}) },
	}
	// 7 deliberately does not divide the 16 logical shards evenly.
	workerCounts := []int{1, 2, 4, 7}
	if testing.Short() {
		workerCounts = []int{1, 4}
	}
	for name, mk := range systems {
		name, mk := name, mk
		for _, w := range workerCounts {
			w := w
			t.Run(fmt.Sprintf("%s/workers=%d", name, w), func(t *testing.T) {
				e, _ := simtest.Run(t, mk(), simtest.Scenario{
					Antagonist: workloads.Intensity3x,
					Seconds:    5,
					Seed:       42,
					Workers:    w,
				})
				got := traceChecksum(e)
				if got != golden[name] {
					t.Fatalf("trace checksum = %#x, golden %#x — placement or sample trace changed (workers=%d)", got, golden[name], w)
				}
			})
		}
	}
}

// traceChecksum folds every sample and the final placement into one
// FNV-1a hash (via the shared simtest.Digest stream); any bit-level
// difference in the run's observable behaviour changes it.
func traceChecksum(e *sim.Engine) uint64 {
	d := simtest.NewDigest()
	d.Samples(e.Samples())
	d.Placement(e.AS())
	return d.Sum()
}
