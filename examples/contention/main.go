// Contention dynamics: start GUPS with no memory interconnect
// contention, let HeMem and HeMem+Colloid reach steady state, then
// switch on a 3x antagonist at t=30s and watch each system react
// (the Figure 9 right column). Vanilla HeMem is contention-agnostic
// and stays degraded; Colloid detects the latency inversion through
// the CHA counters and migrates the hot set to the alternate tier.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"colloid/internal/core"
	"colloid/internal/hemem"
	"colloid/internal/memsys"
	"colloid/internal/scenario"
	"colloid/internal/sim"
	"colloid/internal/workloads"
)

func trace(withColloid bool) ([]sim.Sample, error) {
	topo, err := memsys.NewTopology(memsys.DualSocketXeonDefault(), memsys.DualSocketXeonRemote())
	if err != nil {
		return nil, err
	}
	gups := workloads.DefaultGUPS()
	var colloid *core.Options
	if withColloid {
		colloid = &core.Options{}
	}
	// The antagonist arrives mid-run.
	arrival := &scenario.Scenario{Name: "contention-arrival", Events: []scenario.Event{
		scenario.AntagonistStep{AtSec: 30, Intensity: workloads.Intensity3x},
	}}
	engine, err := sim.New(sim.Config{
		Topology:        topo,
		WorkingSetBytes: gups.WorkingSetBytes,
		Profile:         gups.Profile(),
		Seed:            7,
	}, sim.WithSystem(hemem.New(hemem.Config{Colloid: colloid})), sim.WithScenario(arrival))
	if err != nil {
		return nil, err
	}
	if err := gups.Install(engine.AS(), engine.WorkloadRNG()); err != nil {
		return nil, err
	}
	if err := engine.Run(75); err != nil {
		return nil, err
	}
	return engine.Samples(), nil
}

func main() {
	vanilla, err := trace(false)
	if err != nil {
		log.Fatal(err)
	}
	colloid, err := trace(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("time   hemem Mops   hemem+colloid Mops    (3x antagonist arrives at t=30)")
	for i := 0; i < len(vanilla) && i < len(colloid); i += 5 {
		v, c := vanilla[i], colloid[i]
		marker := ""
		if v.TimeSec == 30 {
			marker = "  <- contention on"
		}
		fmt.Printf("%4.0fs  %8.1f  %12.1f%s\n", v.TimeSec, v.OpsPerSec/1e6, c.OpsPerSec/1e6, marker)
	}
	vFinal := vanilla[len(vanilla)-1].OpsPerSec
	cFinal := colloid[len(colloid)-1].OpsPerSec
	fmt.Printf("\nfinal: vanilla %.1f Mops, colloid %.1f Mops (%.2fx)\n",
		vFinal/1e6, cFinal/1e6, cFinal/vFinal)
	fmt.Println("Colloid converged to the new equilibrium within ~10 simulated seconds")
	fmt.Println("of the contention change (paper Section 5.2).")
}
