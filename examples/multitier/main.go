// Multi-tier generalization: three memory tiers (local DDR, remote
// socket, far CXL expander) managed by Colloid's MultiController, which
// extends the principle of balancing access latencies to any number of
// tiers (Section 3.1): move access probability from the
// highest-latency tier to the lowest until all loaded latencies are
// equal.
//
// The example implements a small tiering system directly against the
// library interfaces — demonstrating how a new system integrates: an
// access-tracking source (the PEBS sampler), the controller, and the
// migration engine.
//
//	go run ./examples/multitier
package main

import (
	"fmt"
	"log"

	"colloid/internal/core"
	"colloid/internal/heat"
	"colloid/internal/memsys"
	"colloid/internal/pages"
	"colloid/internal/sim"
	"colloid/internal/workloads"
)

// multiTierSystem is a minimal Colloid integration for N tiers: a
// heat tracker fed by PEBS samples plus the MultiController. The
// tracker comes from Context.Heat, so the example runs on exact or
// region-granularity tracking without code changes.
type multiTierSystem struct {
	ctrl    *core.MultiController
	tracker heat.Tracker
}

func (m *multiTierSystem) Name() string { return "multitier-colloid" }

func (m *multiTierSystem) Step(ctx *sim.Context) {
	if m.ctrl == nil {
		unloaded := make([]float64, ctx.Topo.NumTiers())
		for t := range unloaded {
			unloaded[t] = ctx.Topo.Tier(memsys.TierID(t)).Config().UnloadedLatencyNs
		}
		m.ctrl = core.NewMultiController(ctx.Topo.NumTiers(),
			core.Options{UnloadedLatencyNs: unloaded,
				StaticLimitBytesPerSec: ctx.Migrator.StaticLimitBytesPerSec()}, 0.5)
		m.tracker = ctx.Heat.NewTracker(64)
	}
	// PEBS sampling: 500 samples per 10 ms quantum.
	for i := 0; i < 500; i++ {
		if id := ctx.Sampler.Sample(); id != pages.NoPage {
			m.tracker.Touch(id)
		}
	}
	d, ok := m.ctrl.Observe(ctx.CHA)
	if !ok || d.Hold {
		return
	}
	limit := int64(d.MigrationLimitBytesPerSec * ctx.QuantumSec)
	if b := ctx.Migrator.Budget(); b < limit {
		limit = b
	}
	// Move the hottest tracked pages of the slow tier toward the fast
	// tier, within the deltaP and byte budgets.
	var cands []core.Candidate
	m.tracker.ForEach(func(id pages.PageID, count uint32) {
		p := ctx.AS.Get(id)
		if p.Dead || p.Tier != d.From {
			return
		}
		cands = append(cands, core.Candidate{ID: id, Probability: m.tracker.Probability(id), Bytes: p.Bytes})
	})
	for _, c := range core.PickPages(cands, d.DeltaP, limit, 4096) {
		if ctx.AS.FreeBytes(d.To) < c.Bytes {
			break
		}
		if err := ctx.Migrator.Move(c.ID, d.To); err != nil {
			break
		}
	}
}

func main() {
	local := memsys.DualSocketXeonDefault()
	remote := memsys.DualSocketXeonRemote()
	far := memsys.CXLTier(128 * memsys.GiB)
	far.Name = "far-cxl"
	far.UnloadedLatencyNs = 210 // a second-hop expander
	topo, err := memsys.NewTopology(local, remote, far)
	if err != nil {
		log.Fatal(err)
	}
	gups := workloads.DefaultGUPS()
	gups.WorkingSetBytes = 160 * memsys.GiB
	gups.HotSetBytes = 48 * memsys.GiB
	engine, err := sim.New(sim.Config{
		Topology:        topo,
		WorkingSetBytes: gups.WorkingSetBytes,
		Profile:         gups.Profile(),
		Seed:            3,
	}, sim.WithSystem(&multiTierSystem{}), sim.WithAntagonist(workloads.Intensity2x))
	if err != nil {
		log.Fatal(err)
	}
	if err := gups.Install(engine.AS(), engine.WorkloadRNG()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("three tiers under 2x contention; balancing all loaded latencies:")
	fmt.Println("time    L_ddr   L_remote  L_cxl    Mops    share ddr/remote/cxl")
	for step := 0; step < 12; step++ {
		if err := engine.Run(5); err != nil {
			log.Fatal(err)
		}
		s := engine.Samples()[len(engine.Samples())-1]
		fmt.Printf("%4.0fs  %6.0fns %7.0fns %6.0fns %7.1f   %.2f/%.2f/%.2f\n",
			s.TimeSec, s.LatencyNs[0], s.LatencyNs[1], s.LatencyNs[2],
			s.OpsPerSec/1e6, s.AppShare[0], s.AppShare[1], s.AppShare[2])
	}
	fmt.Println("\nAt equilibrium the three loaded latencies sit within the delta")
	fmt.Println("deadband of each other (Section 3.1's multi-tier generalization).")
}
