// Quickstart: simulate the paper's testbed (local DDR + remote socket),
// run GUPS under 2x memory interconnect contention with HeMem, then
// with HeMem+Colloid, and compare steady-state throughput and per-tier
// latencies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"colloid/internal/core"
	"colloid/internal/hemem"
	"colloid/internal/memsys"
	"colloid/internal/sim"
	"colloid/internal/workloads"
)

func run(withColloid bool) (sim.Steady, error) {
	// The Section 2.1 hardware: 32 GB local DDR4 at 70 ns and 96 GB
	// remote-socket memory at 135 ns.
	topo, err := memsys.NewTopology(memsys.DualSocketXeonDefault(), memsys.DualSocketXeonRemote())
	if err != nil {
		return sim.Steady{}, err
	}
	// GUPS: 72 GB working set, 24 GB hot set, 90/10 split, 15 cores.
	gups := workloads.DefaultGUPS()
	var colloid *core.Options
	if withColloid {
		colloid = &core.Options{Epsilon: 0.01, Delta: 0.05}
	}
	engine, err := sim.New(sim.Config{
		Topology:        topo,
		WorkingSetBytes: gups.WorkingSetBytes,
		Profile:         gups.Profile(),
		Seed:            42,
	}, sim.WithSystem(hemem.New(hemem.Config{Colloid: colloid})),
		sim.WithAntagonist(workloads.Intensity2x)) // 2x contention
	if err != nil {
		return sim.Steady{}, err
	}
	if err := gups.Install(engine.AS(), engine.WorkloadRNG()); err != nil {
		return sim.Steady{}, err
	}
	if err := engine.Run(40); err != nil {
		return sim.Steady{}, err
	}
	return engine.SteadyState(15), nil
}

func main() {
	vanilla, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	colloid, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GUPS under 2x memory interconnect contention:")
	fmt.Printf("  hemem          %6.1f Mops/s   L_D=%.0fns L_A=%.0fns\n",
		vanilla.OpsPerSec/1e6, vanilla.LatencyNs[0], vanilla.LatencyNs[1])
	fmt.Printf("  hemem+colloid  %6.1f Mops/s   L_D=%.0fns L_A=%.0fns\n",
		colloid.OpsPerSec/1e6, colloid.LatencyNs[0], colloid.LatencyNs[1])
	fmt.Printf("  speedup        %5.2fx  (paper Figure 5: ~1.9x at 2x intensity)\n",
		colloid.OpsPerSec/vanilla.OpsPerSec)
	fmt.Println()
	fmt.Println("Colloid balanced the tier latencies by moving hot pages to the")
	fmt.Println("alternate tier; vanilla HeMem kept them packed in the (contended)")
	fmt.Println("default tier.")
}
