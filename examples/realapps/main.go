// Real applications end to end: actually run PageRank on a synthetic
// power-law graph, YCSB-C transactions against an OCC key-value store,
// and the HeMemKV workload against a sharded LRU cache; record each
// application's page-level access profile through the paged arena; then
// drive the tiered-memory simulation with those profiles and compare
// MEMTIS with and without Colloid under 3x contention (Figure 11).
//
//	go run ./examples/realapps
package main

import (
	"fmt"
	"log"
	"sort"

	"colloid/internal/apps/cachelib"
	"colloid/internal/apps/gapbs"
	"colloid/internal/apps/silo"
	"colloid/internal/core"
	"colloid/internal/memsys"
	"colloid/internal/memtis"
	"colloid/internal/paged"
	"colloid/internal/sim"
	"colloid/internal/stats"
	"colloid/internal/workloads"
)

// app bundles a recorded profile with its traffic shape and sizing.
type app struct {
	name    string
	weights []float64
	traffic workloads.Profile
	wsBytes int64
}

func buildApps() ([]app, error) {
	rng := stats.NewRNG(99)
	var out []app

	// --- GAPBS PageRank on a Twitter-like graph ---
	g, err := gapbs.GeneratePowerLaw(200_000, 16, 0.8, rng)
	if err != nil {
		return nil, err
	}
	arena := paged.NewArena(1 << 11)
	pr, err := gapbs.PageRank(g, 0.85, 1e-9, 4, arena)
	if err != nil {
		return nil, err
	}
	fmt.Printf("gapbs: %d nodes, %d edges, PageRank ran %d iterations, %d pages profiled\n",
		g.NumNodes(), g.NumEdges(), pr.Iterations, arena.Pages())
	out = append(out, app{
		name: "gapbs", weights: arena.Profile(), wsBytes: 38 * memsys.GiB,
		traffic: workloads.Profile{Name: "gapbs", Cores: 15, Inflight: 6,
			SeqFraction: 0.5, WriteFraction: 0.1, RequestsPerOp: 1},
	})

	// --- Silo with YCSB-C ---
	store, err := silo.NewStore(1<<11, 164)
	if err != nil {
		return nil, err
	}
	res, err := silo.RunYCSB(store, silo.YCSBConfig{Keys: 300_000, Skew: 0.99, Ops: 1_500_000}, rng)
	if err != nil {
		return nil, err
	}
	fmt.Printf("silo: %d keys loaded, %d reads, %d conflicts\n", store.Len(), res.Reads, res.Conflicts)
	out = append(out, app{
		name: "silo", weights: store.Arena().Profile(), wsBytes: 60 * memsys.GiB,
		traffic: workloads.Profile{Name: "silo", Cores: 15,
			Inflight:    workloads.InflightForObjectSize(192),
			SeqFraction: workloads.SeqFractionForObjectSize(192), RequestsPerOp: 3},
	})

	// --- CacheLib with HeMemKV ---
	cache, err := cachelib.New(cachelib.Config{Shards: 16, CapacityItems: 30_000, ValueBytes: 4096, PageBytes: 1 << 16})
	if err != nil {
		return nil, err
	}
	cfg := cachelib.HeMemKVConfig{Keys: 30_000, HotFrac: 0.2, HotProb: 0.9, GetFrac: 0.9, Ops: 1_000_000}
	if err := cachelib.RunHeMemKV(cache, cfg, rng); err != nil {
		return nil, err
	}
	hits, misses, _ := cache.Stats()
	fmt.Printf("cachelib: %d items, %.1f%% hit rate\n", cache.Len(),
		100*float64(hits)/float64(hits+misses))
	out = append(out, app{
		name: "cachelib", weights: cache.Arena().Profile(), wsBytes: 75 * memsys.GiB,
		traffic: workloads.Profile{Name: "cachelib", Cores: 15,
			Inflight:      workloads.InflightForObjectSize(4096),
			SeqFraction:   workloads.SeqFractionForObjectSize(4096),
			WriteFraction: 0.2, RequestsPerOp: 64},
	})
	return out, nil
}

// skewSummary reports how concentrated an access profile is.
func skewSummary(weights []float64) string {
	w := append([]float64(nil), weights...)
	sort.Sort(sort.Reverse(sort.Float64Slice(w)))
	var total float64
	for _, v := range w {
		total += v
	}
	var acc float64
	pages := 0
	for _, v := range w {
		acc += v
		pages++
		if acc >= 0.9*total {
			break
		}
	}
	return fmt.Sprintf("hottest %.1f%% of pages carry 90%% of accesses",
		100*float64(pages)/float64(len(w)))
}

func simulate(a app, withColloid bool) (float64, error) {
	defaultTier := memsys.DualSocketXeonDefault()
	defaultTier.CapacityBytes = a.wsBytes / 3 // paper: default tier = WS/3
	remote := memsys.DualSocketXeonRemote()
	remote.CapacityBytes = a.wsBytes
	topo, err := memsys.NewTopology(defaultTier, remote)
	if err != nil {
		return 0, err
	}
	var opts *core.Options
	if withColloid {
		opts = &core.Options{}
	}
	engine, err := sim.New(sim.Config{
		Topology:        topo,
		WorkingSetBytes: a.wsBytes / (2 * memsys.MiB) * (2 * memsys.MiB),
		Profile:         a.traffic,
		Seed:            5,
	}, sim.WithSystem(memtis.New(memtis.Config{Colloid: opts})),
		sim.WithAntagonist(workloads.Intensity3x))
	if err != nil {
		return 0, err
	}
	fw := &workloads.FromWeights{Name: a.name, Weights: a.weights, Traffic: a.traffic}
	if err := fw.Install(engine.AS(), engine.WorkloadRNG()); err != nil {
		return 0, err
	}
	if err := engine.Run(40); err != nil {
		return 0, err
	}
	return engine.SteadyState(15).OpsPerSec, nil
}

func main() {
	apps, err := buildApps()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("app        profile skew                                   memtis      +colloid    gain")
	for _, a := range apps {
		vanilla, err := simulate(a, false)
		if err != nil {
			log.Fatal(err)
		}
		colloid, err := simulate(a, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %-45s  %7.2fMops  %7.2fMops  %.2fx\n",
			a.name, skewSummary(a.weights), vanilla/1e6, colloid/1e6, colloid/vanilla)
	}
	fmt.Println("\n(3x contention, default tier = working set / 3; paper Figure 11)")
}
